package storage

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// DiskStore is the log-structured persistent backend. On disk a table is a
// directory holding:
//
//   - MANIFEST.json — format version, schema shape, data version, the
//     ordered segment list, and the NAME of the active append log; replaced
//     atomically (tmp + rename, both fsynced) so a crash mid-flush leaves
//     the previous manifest intact.
//   - wal.log / wal-XXXXXX.log — the append log: framed row batches written
//     before they are acknowledged, replayed (tolerating a torn tail) on
//     open. Flush ROTATES to a fresh log and publishes its name in the same
//     manifest that adds the compacted segment, so replay reads either the
//     old manifest + old log or the new manifest + empty log — never the
//     compacted rows twice. Logs the manifest no longer names are deleted
//     at open.
//   - seg-XXXXXX.seg — immutable column segments: rows sorted by the
//     table's clustered column, per-column zone maps (min/max) in the
//     header, then column-contiguous little-endian int64 data.
//   - seg-XXXXXX.ixN — ordered index segments for indexed column N:
//     (order-preserving key, global row id) pairs sorted by key.
//
// All reads are served from an embedded MemStore; the files exist to
// survive restarts. Flush compacts the unflushed tail (WAL rows plus any
// wholesale reset) into a new segment and truncates the log. Zone-map
// pruning stays multiset-sound even though segments are sorted at flush
// while the in-memory mirror keeps arrival order: a segment's zone is the
// min/max of the SAME row multiset its in-memory span holds, so a zone that
// excludes a predicate excludes every row of the span.
type DiskStore struct {
	dir       string
	name      string
	width     int
	sortedBy  int
	indexCols []int

	mem *MemStore

	mu         sync.Mutex
	wal        *os.File
	walFile    string // active log's file name, as recorded in the manifest
	walRows    int    // rows in the log (the unflushed tail), when not dirtyAll
	segs       []segMeta
	segRows    int // rows covered by segments == start of the tail span
	seq        int // next segment file number
	dirtyAll   bool
	loadedVer  uint64
	indexes    map[int]*OrderedIndex
	indexValid bool
}

// segMeta is one segment's manifest entry plus its loaded zone maps.
type segMeta struct {
	File  string `json:"file"`
	Rows  int    `json:"rows"`
	zones []Zone
}

type manifest struct {
	Format      int       `json:"format"`
	Name        string    `json:"name"`
	Width       int       `json:"width"`
	SortedBy    int       `json:"sorted_by"`
	DataVersion uint64    `json:"data_version"`
	Seq         int       `json:"seq"`
	IndexCols   []int     `json:"index_cols"`
	Wal         string    `json:"wal,omitempty"`
	Segments    []segMeta `json:"segments"`
}

const (
	manifestFormat = 1
	manifestName   = "MANIFEST.json"
	walName        = "wal.log" // bootstrap log name, before the first flush rotates
	segMagic       = "REPROSG1"
	ixMagic        = "REPROIX1"
)

// OpenDiskStore opens (or initializes) the persistent store for one table
// under dir. Existing segments and the append log are replayed into memory;
// the store then serves reads at in-memory speed. sortedBy < 0 means no
// clustered order; indexCols lists columns to maintain ordered index
// segments for.
func OpenDiskStore(dir, name string, width, sortedBy int, indexCols []int) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create table dir: %w", err)
	}
	s := &DiskStore{
		dir:       dir,
		name:      name,
		width:     width,
		sortedBy:  sortedBy,
		indexCols: append([]int(nil), indexCols...),
		mem:       NewMemStore(width),
		indexes:   map[int]*OrderedIndex{},
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	wal, err := s.openWAL()
	if err != nil {
		return nil, err
	}
	s.wal = wal
	return s, nil
}

// load replays the manifest's segments and then the WAL into memory.
func (s *DiskStore) load() error {
	var m manifest
	raw, err := os.ReadFile(filepath.Join(s.dir, manifestName))
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Fresh directory, or a crash before the first flush: nothing but
		// (possibly) a log to replay.
	case err != nil:
		return fmt.Errorf("storage: read manifest: %w", err)
	default:
		if err := json.Unmarshal(raw, &m); err != nil {
			return fmt.Errorf("storage: parse manifest: %w", err)
		}
		if m.Format != manifestFormat {
			return fmt.Errorf("storage: manifest format %d not supported", m.Format)
		}
		if m.Width != s.width {
			return fmt.Errorf("storage: table %s has %d columns on disk, %d in schema", s.name, m.Width, s.width)
		}
	}
	s.loadedVer = m.DataVersion
	s.seq = m.Seq
	s.walFile = m.Wal
	if s.walFile == "" {
		// Fresh directory, or a crash before the first flush: the bootstrap
		// log is the active one.
		s.walFile = walName
	}
	// Drop logs the manifest no longer names — a crash between publishing a
	// rotated manifest and removing the superseded log leaves the old file
	// behind; replaying it would duplicate the rows Flush just compacted.
	if stale, _ := filepath.Glob(filepath.Join(s.dir, "wal*.log")); len(stale) > 0 {
		for _, p := range stale {
			if filepath.Base(p) != s.walFile {
				os.Remove(p)
			}
		}
	}
	var ixKeys, ixRows map[int][]int64
	if len(s.indexCols) > 0 {
		ixKeys = map[int][]int64{}
		ixRows = map[int][]int64{}
	}
	for _, sm := range m.Segments {
		zones, rows, err := readSegment(filepath.Join(s.dir, sm.File), s.width)
		if err != nil {
			return fmt.Errorf("storage: segment %s: %w", sm.File, err)
		}
		if len(rows) != sm.Rows {
			return fmt.Errorf("storage: segment %s holds %d rows, manifest says %d", sm.File, len(rows), sm.Rows)
		}
		if err := s.mem.Append(rows); err != nil {
			return err
		}
		s.segs = append(s.segs, segMeta{File: sm.File, Rows: sm.Rows, zones: zones})
		s.segRows += sm.Rows
		for _, col := range s.indexCols {
			k, r, err := readIndexSegment(ixPath(filepath.Join(s.dir, sm.File), col), col)
			if err != nil {
				return fmt.Errorf("storage: index segment for %s col %d: %w", sm.File, col, err)
			}
			ixKeys[col] = append(ixKeys[col], k...)
			ixRows[col] = append(ixRows[col], r...)
		}
	}
	// Replay the active append log; its rows are the unflushed tail.
	walRows, err := replayWAL(filepath.Join(s.dir, s.walFile), s.width, func(rows [][]int64) error {
		return s.mem.Append(rows)
	})
	if err != nil {
		return err
	}
	s.walRows = walRows
	// The merged on-disk indexes are usable only when they cover every row.
	s.indexValid = walRows == 0
	if s.indexValid {
		for _, col := range s.indexCols {
			s.indexes[col] = NewOrderedIndex(col, ixKeys[col], ixRows[col])
		}
	}
	return nil
}

// openWAL opens the active log for appending, truncating any torn tail
// first so new records never follow garbage.
func (s *DiskStore) openWAL() (*os.File, error) {
	path := filepath.Join(s.dir, s.walFile)
	good, err := walGoodPrefix(path, s.width)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: truncate wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: sync wal: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: seek wal: %w", err)
	}
	// The file (and any stale-log removal) must be durable in the directory
	// before the first append is acknowledged.
	if err := syncDir(s.dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

func (s *DiskStore) Kind() string { return "disk" }

func (s *DiskStore) Snapshot() *Snapshot { return s.mem.Snapshot() }

func (s *DiskStore) Append(rows [][]int64) error {
	if len(rows) == 0 {
		return nil
	}
	for _, r := range rows {
		if len(r) != s.width {
			return fmt.Errorf("storage: append row has %d values, table has %d columns", len(r), s.width)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return fmt.Errorf("storage: table %s store is closed", s.name)
	}
	if err := writeWALRecord(s.wal, rows); err != nil {
		return err
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("storage: sync wal: %w", err)
	}
	if err := s.mem.Append(rows); err != nil {
		return err
	}
	s.walRows += len(rows)
	// Unflushed rows are invisible to the persisted indexes.
	s.indexValid = false
	return nil
}

func (s *DiskStore) ResetRows(rows [][]int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if sameContent(s.mem.Snapshot(), rows) {
		// The analyze/rebuild path re-materializes identical content (the
		// common case); segments, zones, and indexes all remain exact, so
		// the snapshot readers hold stays published untouched.
		return
	}
	// Content changed — even at the same row count (e.g. a full sliding
	// window replaced wholesale), disk history no longer matches. The next
	// Flush rewrites everything as one segment.
	s.mem.ResetRows(rows)
	s.dirtyAll = true
	s.indexValid = false
}

// sameContent reports whether the row-major rows hold exactly the
// snapshot's values, in order.
func sameContent(snap *Snapshot, rows [][]int64) bool {
	if len(rows) != snap.N {
		return false
	}
	for i, r := range rows {
		if len(r) != len(snap.Cols) {
			return false
		}
		for c, v := range r {
			if snap.Cols[c][i] != v {
				return false
			}
		}
	}
	return true
}

func (s *DiskStore) Scan(preds []Pred, batch int) *SegIter {
	// Snapshot and segment metadata must be read atomically together: a
	// concurrent ResetRows/Flush swaps both under mu, and applying one
	// generation's zone maps to the other's data could prune live rows.
	s.mu.Lock()
	snap := s.mem.Snapshot()
	segs := s.segs
	segRows := s.segRows
	dirtyAll := s.dirtyAll
	s.mu.Unlock()
	if dirtyAll || len(preds) == 0 || len(segs) == 0 {
		return newSegIter(snap, []span{{0, snap.N}}, 0, batch)
	}
	spans := make([]span, 0, len(segs)+1)
	pruned := 0
	lo := 0
	for i := range segs {
		hi := lo + segs[i].Rows
		if hi > snap.N {
			hi = snap.N
		}
		if lo >= hi {
			break
		}
		if prunes(segs[i].zones, preds) {
			pruned += hi - lo
		} else {
			spans = appendSpan(spans, span{lo, hi})
		}
		lo = hi
	}
	if segRows < snap.N {
		// The unflushed tail has no zone maps; always scan it.
		spans = appendSpan(spans, span{segRows, snap.N})
	}
	return newSegIter(snap, spans, pruned, batch)
}

// appendSpan coalesces adjacent spans so the iterator windows stay large.
func appendSpan(spans []span, sp span) []span {
	if n := len(spans); n > 0 && spans[n-1].hi == sp.lo {
		spans[n-1].hi = sp.hi
		return spans
	}
	return append(spans, sp)
}

func (s *DiskStore) ZoneCols() []int {
	if s.sortedBy < 0 {
		return nil
	}
	return []int{s.sortedBy}
}

func (s *DiskStore) OrderedIndex(col int) *OrderedIndex {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.indexValid {
		return nil
	}
	return s.indexes[col]
}

func (s *DiskStore) LoadedVersion() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loadedVer
}

// Flush persists the unflushed tail (or, after a wholesale reset, the full
// content) as a new sorted segment plus index segments, then rotates to a
// fresh append log and rewrites the manifest atomically. Replay is
// idempotent across the flush boundary because the manifest names the
// active log: a crash anywhere in Flush recovers either the old manifest +
// old log (flush never happened) or the new manifest + empty log (flush
// fully happened) — the compacted rows are never replayed twice.
func (s *DiskStore) Flush(version uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return fmt.Errorf("storage: table %s store is closed", s.name)
	}
	snap := s.mem.Snapshot()
	var obsolete []segMeta
	prevSegs, prevRows := s.segs, s.segRows
	if s.dirtyAll {
		// Wholesale rewrite: every existing segment is replaced below. The
		// old files are deleted only after the new manifest is published,
		// so a failed flush leaves the previous generation intact.
		obsolete = s.segs
		s.segs = nil
		s.segRows = 0
	}
	fail := func(err error) error {
		s.segs, s.segRows = prevSegs, prevRows
		return err
	}
	if s.segRows < snap.N {
		if err := s.writeSegmentLocked(snap, s.segRows, snap.N); err != nil {
			return fail(err)
		}
	}
	// Rotate: create the empty successor log before the manifest that names
	// it. Until that manifest is published, replay still pairs the old
	// manifest with the old log.
	newWalFile := fmt.Sprintf("wal-%06d.log", s.seq)
	s.seq++
	newWAL, err := os.OpenFile(filepath.Join(s.dir, newWalFile), os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
	if err != nil {
		return fail(fmt.Errorf("storage: create wal: %w", err))
	}
	abortWAL := func(err error) error {
		newWAL.Close()
		os.Remove(filepath.Join(s.dir, newWalFile))
		return fail(err)
	}
	if err := newWAL.Sync(); err != nil {
		return abortWAL(fmt.Errorf("storage: sync wal: %w", err))
	}
	// New segment and log files must be durable directory entries before
	// the manifest that references them is published.
	if err := syncDir(s.dir); err != nil {
		return abortWAL(err)
	}
	if err := s.writeManifestLocked(version, newWalFile); err != nil {
		return abortWAL(err)
	}
	s.dirtyAll = false
	for _, sm := range obsolete {
		os.Remove(filepath.Join(s.dir, sm.File))
		for _, col := range s.indexCols {
			os.Remove(ixPath(filepath.Join(s.dir, sm.File), col))
		}
	}
	// The old log's rows are now covered by segments; drop it. If the
	// process dies before the Remove lands, open-time cleanup deletes any
	// log the manifest no longer names.
	s.wal.Close()
	os.Remove(filepath.Join(s.dir, s.walFile))
	s.wal = newWAL
	s.walFile = newWalFile
	s.walRows = 0
	s.loadedVer = version
	// The fresh index segments refer to on-disk (sorted) row positions; the
	// in-memory mirror keeps arrival order, so they only become usable at
	// the next boot.
	s.indexValid = false
	return nil
}

// writeSegmentLocked flushes rows [lo, hi) of the snapshot as one segment
// with its index segments. Caller holds s.mu.
func (s *DiskStore) writeSegmentLocked(snap *Snapshot, lo, hi int) error {
	n := hi - lo
	// Materialize the segment's rows sorted by the clustered column (stable,
	// so equal keys keep arrival order).
	perm := make([]int, n)
	for i := range perm {
		perm[i] = lo + i
	}
	if s.sortedBy >= 0 && s.sortedBy < s.width {
		key := snap.Cols[s.sortedBy]
		sort.SliceStable(perm, func(a, b int) bool { return key[perm[a]] < key[perm[b]] })
	}
	base := fmt.Sprintf("seg-%06d.seg", s.seq)
	s.seq++
	path := filepath.Join(s.dir, base)
	zones, err := writeSegment(path, snap, perm)
	if err != nil {
		return err
	}
	for _, col := range s.indexCols {
		if err := writeIndexSegment(ixPath(path, col), col, snap, perm, lo); err != nil {
			return err
		}
	}
	s.segs = append(s.segs, segMeta{File: base, Rows: n, zones: zones})
	s.segRows = hi
	return nil
}

// writeManifestLocked replaces the manifest atomically and durably: the
// tmp file is fsynced before the rename and the directory after it, so the
// publication survives power loss, not just process death. Caller holds
// s.mu.
func (s *DiskStore) writeManifestLocked(version uint64, walFile string) error {
	m := manifest{
		Format:      manifestFormat,
		Name:        s.name,
		Width:       s.width,
		SortedBy:    s.sortedBy,
		DataVersion: version,
		Seq:         s.seq,
		IndexCols:   s.indexCols,
		Wal:         walFile,
		Segments:    s.segs,
	}
	raw, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return fmt.Errorf("storage: encode manifest: %w", err)
	}
	tmp := filepath.Join(s.dir, manifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: create manifest: %w", err)
	}
	if _, err := f.Write(raw); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: write manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: sync manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: close manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, manifestName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: publish manifest: %w", err)
	}
	return syncDir(s.dir)
}

// syncDir fsyncs a directory so renames and file creations within it are
// durable, not merely ordered.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("storage: sync dir: %w", err)
	}
	return nil
}

func (s *DiskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}

// ixPath names the index segment file for a segment file and column.
func ixPath(segPath string, col int) string {
	return fmt.Sprintf("%s.ix%d", segPath[:len(segPath)-len(".seg")], col)
}
