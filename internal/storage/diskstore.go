package storage

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// DiskStore is the log-structured persistent backend. On disk a table is a
// directory holding:
//
//   - MANIFEST.json — format version, schema shape, data version, and the
//     ordered segment list; replaced atomically (tmp + rename) so a crash
//     mid-flush leaves the previous manifest intact.
//   - wal.log — the append log: framed row batches written before they are
//     acknowledged, replayed (tolerating a torn tail) on open.
//   - seg-XXXXXX.seg — immutable column segments: rows sorted by the
//     table's clustered column, per-column zone maps (min/max) in the
//     header, then column-contiguous little-endian int64 data.
//   - seg-XXXXXX.ixN — ordered index segments for indexed column N:
//     (order-preserving key, global row id) pairs sorted by key.
//
// All reads are served from an embedded MemStore; the files exist to
// survive restarts. Flush compacts the unflushed tail (WAL rows plus any
// wholesale reset) into a new segment and truncates the log. Zone-map
// pruning stays multiset-sound even though segments are sorted at flush
// while the in-memory mirror keeps arrival order: a segment's zone is the
// min/max of the SAME row multiset its in-memory span holds, so a zone that
// excludes a predicate excludes every row of the span.
type DiskStore struct {
	dir       string
	name      string
	width     int
	sortedBy  int
	indexCols []int

	mem *MemStore

	mu         sync.Mutex
	wal        *os.File
	walRows    int // rows in the log (the unflushed tail), when not dirtyAll
	segs       []segMeta
	segRows    int // rows covered by segments == start of the tail span
	seq        int // next segment file number
	dirtyAll   bool
	loadedVer  uint64
	indexes    map[int]*OrderedIndex
	indexValid bool
}

// segMeta is one segment's manifest entry plus its loaded zone maps.
type segMeta struct {
	File  string `json:"file"`
	Rows  int    `json:"rows"`
	zones []Zone
}

type manifest struct {
	Format      int       `json:"format"`
	Name        string    `json:"name"`
	Width       int       `json:"width"`
	SortedBy    int       `json:"sorted_by"`
	DataVersion uint64    `json:"data_version"`
	Seq         int       `json:"seq"`
	IndexCols   []int     `json:"index_cols"`
	Segments    []segMeta `json:"segments"`
}

const (
	manifestFormat = 1
	manifestName   = "MANIFEST.json"
	walName        = "wal.log"
	segMagic       = "REPROSG1"
	ixMagic        = "REPROIX1"
)

// OpenDiskStore opens (or initializes) the persistent store for one table
// under dir. Existing segments and the append log are replayed into memory;
// the store then serves reads at in-memory speed. sortedBy < 0 means no
// clustered order; indexCols lists columns to maintain ordered index
// segments for.
func OpenDiskStore(dir, name string, width, sortedBy int, indexCols []int) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create table dir: %w", err)
	}
	s := &DiskStore{
		dir:       dir,
		name:      name,
		width:     width,
		sortedBy:  sortedBy,
		indexCols: append([]int(nil), indexCols...),
		mem:       NewMemStore(width),
		indexes:   map[int]*OrderedIndex{},
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	wal, err := s.openWAL()
	if err != nil {
		return nil, err
	}
	s.wal = wal
	return s, nil
}

// load replays the manifest's segments and then the WAL into memory.
func (s *DiskStore) load() error {
	var m manifest
	raw, err := os.ReadFile(filepath.Join(s.dir, manifestName))
	switch {
	case errors.Is(err, os.ErrNotExist):
		// Fresh directory, or a crash before the first flush: nothing but
		// (possibly) a log to replay.
	case err != nil:
		return fmt.Errorf("storage: read manifest: %w", err)
	default:
		if err := json.Unmarshal(raw, &m); err != nil {
			return fmt.Errorf("storage: parse manifest: %w", err)
		}
		if m.Format != manifestFormat {
			return fmt.Errorf("storage: manifest format %d not supported", m.Format)
		}
		if m.Width != s.width {
			return fmt.Errorf("storage: table %s has %d columns on disk, %d in schema", s.name, m.Width, s.width)
		}
	}
	s.loadedVer = m.DataVersion
	s.seq = m.Seq
	var ixKeys, ixRows map[int][]int64
	if len(s.indexCols) > 0 {
		ixKeys = map[int][]int64{}
		ixRows = map[int][]int64{}
	}
	for _, sm := range m.Segments {
		zones, rows, err := readSegment(filepath.Join(s.dir, sm.File), s.width)
		if err != nil {
			return fmt.Errorf("storage: segment %s: %w", sm.File, err)
		}
		if len(rows) != sm.Rows {
			return fmt.Errorf("storage: segment %s holds %d rows, manifest says %d", sm.File, len(rows), sm.Rows)
		}
		if err := s.mem.Append(rows); err != nil {
			return err
		}
		s.segs = append(s.segs, segMeta{File: sm.File, Rows: sm.Rows, zones: zones})
		s.segRows += sm.Rows
		for _, col := range s.indexCols {
			k, r, err := readIndexSegment(ixPath(filepath.Join(s.dir, sm.File), col), col)
			if err != nil {
				return fmt.Errorf("storage: index segment for %s col %d: %w", sm.File, col, err)
			}
			ixKeys[col] = append(ixKeys[col], k...)
			ixRows[col] = append(ixRows[col], r...)
		}
	}
	// Replay the append log; its rows are the unflushed tail.
	walRows, err := replayWAL(filepath.Join(s.dir, walName), s.width, func(rows [][]int64) error {
		return s.mem.Append(rows)
	})
	if err != nil {
		return err
	}
	s.walRows = walRows
	// The merged on-disk indexes are usable only when they cover every row.
	s.indexValid = walRows == 0
	if s.indexValid {
		for _, col := range s.indexCols {
			s.indexes[col] = NewOrderedIndex(col, ixKeys[col], ixRows[col])
		}
	}
	return nil
}

// openWAL opens the log for appending, truncating any torn tail first so
// new records never follow garbage.
func (s *DiskStore) openWAL() (*os.File, error) {
	path := filepath.Join(s.dir, walName)
	good, err := walGoodPrefix(path, s.width)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: truncate wal: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: seek wal: %w", err)
	}
	return f, nil
}

func (s *DiskStore) Kind() string { return "disk" }

func (s *DiskStore) Snapshot() *Snapshot { return s.mem.Snapshot() }

func (s *DiskStore) Append(rows [][]int64) error {
	if len(rows) == 0 {
		return nil
	}
	for _, r := range rows {
		if len(r) != s.width {
			return fmt.Errorf("storage: append row has %d values, table has %d columns", len(r), s.width)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return fmt.Errorf("storage: table %s store is closed", s.name)
	}
	if err := writeWALRecord(s.wal, rows); err != nil {
		return err
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("storage: sync wal: %w", err)
	}
	if err := s.mem.Append(rows); err != nil {
		return err
	}
	s.walRows += len(rows)
	// Unflushed rows are invisible to the persisted indexes.
	s.indexValid = false
	return nil
}

func (s *DiskStore) ResetRows(rows [][]int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sameN := len(rows) == s.mem.Snapshot().N
	s.mem.ResetRows(rows)
	if sameN && !s.dirtyAll {
		// The analyze/rebuild path re-materializes the same rows; keep the
		// segments and refresh their zones from the new snapshot so pruning
		// stays sound even if values moved within the mirror.
		s.recomputeZonesLocked()
		return
	}
	// Wholesale replacement: history on disk no longer matches. The next
	// Flush rewrites everything as one segment.
	s.dirtyAll = true
	s.indexValid = false
}

// recomputeZonesLocked rebuilds every segment's zone maps from the
// in-memory span it covers. Caller holds s.mu.
func (s *DiskStore) recomputeZonesLocked() {
	snap := s.mem.Snapshot()
	lo := 0
	for i := range s.segs {
		hi := lo + s.segs[i].Rows
		if hi > snap.N {
			hi = snap.N
		}
		s.segs[i].zones = computeZones(snap, lo, hi)
		lo = hi
	}
}

func (s *DiskStore) Scan(preds []Pred, batch int) *SegIter {
	s.mu.Lock()
	segs := s.segs
	segRows := s.segRows
	dirtyAll := s.dirtyAll
	s.mu.Unlock()
	snap := s.mem.Snapshot()
	if dirtyAll || len(preds) == 0 || len(segs) == 0 {
		return newSegIter(snap, []span{{0, snap.N}}, 0, batch)
	}
	spans := make([]span, 0, len(segs)+1)
	pruned := 0
	lo := 0
	for i := range segs {
		hi := lo + segs[i].Rows
		if hi > snap.N {
			hi = snap.N
		}
		if lo >= hi {
			break
		}
		if prunes(segs[i].zones, preds) {
			pruned += hi - lo
		} else {
			spans = appendSpan(spans, span{lo, hi})
		}
		lo = hi
	}
	if segRows < snap.N {
		// The unflushed tail has no zone maps; always scan it.
		spans = appendSpan(spans, span{segRows, snap.N})
	}
	return newSegIter(snap, spans, pruned, batch)
}

// appendSpan coalesces adjacent spans so the iterator windows stay large.
func appendSpan(spans []span, sp span) []span {
	if n := len(spans); n > 0 && spans[n-1].hi == sp.lo {
		spans[n-1].hi = sp.hi
		return spans
	}
	return append(spans, sp)
}

func (s *DiskStore) ZoneCols() []int {
	if s.sortedBy < 0 {
		return nil
	}
	return []int{s.sortedBy}
}

func (s *DiskStore) OrderedIndex(col int) *OrderedIndex {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.indexValid {
		return nil
	}
	return s.indexes[col]
}

func (s *DiskStore) LoadedVersion() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loadedVer
}

// Flush persists the unflushed tail (or, after a wholesale reset, the full
// content) as a new sorted segment plus index segments, then rewrites the
// manifest atomically and truncates the log.
func (s *DiskStore) Flush(version uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return fmt.Errorf("storage: table %s store is closed", s.name)
	}
	snap := s.mem.Snapshot()
	var obsolete []segMeta
	prevSegs, prevRows := s.segs, s.segRows
	if s.dirtyAll {
		// Wholesale rewrite: every existing segment is replaced below. The
		// old files are deleted only after the new manifest is published,
		// so a failed flush leaves the previous generation intact.
		obsolete = s.segs
		s.segs = nil
		s.segRows = 0
	}
	fail := func(err error) error {
		if s.dirtyAll {
			s.segs, s.segRows = prevSegs, prevRows
		}
		return err
	}
	if s.segRows < snap.N {
		if err := s.writeSegmentLocked(snap, s.segRows, snap.N); err != nil {
			return fail(err)
		}
	}
	if err := s.writeManifestLocked(version); err != nil {
		return fail(err)
	}
	s.dirtyAll = false
	for _, sm := range obsolete {
		os.Remove(filepath.Join(s.dir, sm.File))
		for _, col := range s.indexCols {
			os.Remove(ixPath(filepath.Join(s.dir, sm.File), col))
		}
	}
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("storage: truncate wal: %w", err)
	}
	if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("storage: rewind wal: %w", err)
	}
	s.walRows = 0
	s.loadedVer = version
	// The fresh index segments refer to on-disk (sorted) row positions; the
	// in-memory mirror keeps arrival order, so they only become usable at
	// the next boot.
	s.indexValid = false
	return nil
}

// writeSegmentLocked flushes rows [lo, hi) of the snapshot as one segment
// with its index segments. Caller holds s.mu.
func (s *DiskStore) writeSegmentLocked(snap *Snapshot, lo, hi int) error {
	n := hi - lo
	// Materialize the segment's rows sorted by the clustered column (stable,
	// so equal keys keep arrival order).
	perm := make([]int, n)
	for i := range perm {
		perm[i] = lo + i
	}
	if s.sortedBy >= 0 && s.sortedBy < s.width {
		key := snap.Cols[s.sortedBy]
		sort.SliceStable(perm, func(a, b int) bool { return key[perm[a]] < key[perm[b]] })
	}
	base := fmt.Sprintf("seg-%06d.seg", s.seq)
	s.seq++
	path := filepath.Join(s.dir, base)
	zones, err := writeSegment(path, snap, perm)
	if err != nil {
		return err
	}
	for _, col := range s.indexCols {
		if err := writeIndexSegment(ixPath(path, col), col, snap, perm, lo); err != nil {
			return err
		}
	}
	s.segs = append(s.segs, segMeta{File: base, Rows: n, zones: zones})
	s.segRows = hi
	return nil
}

// writeManifestLocked replaces the manifest atomically. Caller holds s.mu.
func (s *DiskStore) writeManifestLocked(version uint64) error {
	m := manifest{
		Format:      manifestFormat,
		Name:        s.name,
		Width:       s.width,
		SortedBy:    s.sortedBy,
		DataVersion: version,
		Seq:         s.seq,
		IndexCols:   s.indexCols,
		Segments:    s.segs,
	}
	raw, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return fmt.Errorf("storage: encode manifest: %w", err)
	}
	tmp := filepath.Join(s.dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("storage: write manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, manifestName)); err != nil {
		return fmt.Errorf("storage: publish manifest: %w", err)
	}
	return nil
}

func (s *DiskStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}

// computeZones returns per-column min/max over snapshot rows [lo, hi).
func computeZones(snap *Snapshot, lo, hi int) []Zone {
	zones := make([]Zone, len(snap.Cols))
	for c, col := range snap.Cols {
		if lo >= hi {
			continue
		}
		z := Zone{Min: col[lo], Max: col[lo]}
		for _, v := range col[lo+1 : hi] {
			if v < z.Min {
				z.Min = v
			}
			if v > z.Max {
				z.Max = v
			}
		}
		zones[c] = z
	}
	return zones
}

// ixPath names the index segment file for a segment file and column.
func ixPath(segPath string, col int) string {
	return fmt.Sprintf("%s.ix%d", segPath[:len(segPath)-len(".seg")], col)
}
