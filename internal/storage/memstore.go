package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// MemStore is the volatile backend: the table's columnar mirror held behind
// one atomically published Snapshot. Appends grow the columns and publish a
// new snapshot; readers that loaded the previous snapshot keep a consistent
// view because they only ever index rows < the N they loaded, and the
// atomic Store/Load pair orders the value writes before the new length
// becomes visible. When a column's backing array must grow, append copies
// it, so old snapshots' arrays are never reallocated out from under a
// reader.
type MemStore struct {
	width int
	mu    sync.Mutex // serializes writers (Append/ResetRows)
	snap  atomic.Pointer[Snapshot]
}

// NewMemStore returns an empty in-memory store of the given column count.
func NewMemStore(width int) *MemStore {
	s := &MemStore{width: width}
	cols := make([][]int64, width)
	s.snap.Store(&Snapshot{Cols: cols})
	return s
}

// NewMemStoreRows builds a store from row-major data in one transpose.
func NewMemStoreRows(width int, rows [][]int64) *MemStore {
	s := NewMemStore(width)
	s.ResetRows(rows)
	return s
}

func (s *MemStore) Kind() string { return "mem" }

func (s *MemStore) Snapshot() *Snapshot { return s.snap.Load() }

func (s *MemStore) Append(rows [][]int64) error {
	if len(rows) == 0 {
		return nil
	}
	for _, r := range rows {
		if len(r) != s.width {
			return fmt.Errorf("storage: append row has %d values, table has %d columns", len(r), s.width)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appendLocked(rows)
	return nil
}

// appendLocked grows the columns and publishes the new snapshot. Caller
// holds s.mu.
func (s *MemStore) appendLocked(rows [][]int64) {
	old := s.snap.Load()
	n := old.N + len(rows)
	cols := make([][]int64, s.width)
	for c := 0; c < s.width; c++ {
		col := old.Cols[c]
		if cap(col) < n {
			// Grow with headroom by copying, never by reallocating the
			// array an older snapshot may still be reading.
			grown := make([]int64, old.N, growCap(old.N, n))
			copy(grown, col[:old.N])
			col = grown
		}
		col = col[:old.N]
		for _, r := range rows {
			col = append(col, r[c])
		}
		cols[c] = col
	}
	s.snap.Store(&Snapshot{Cols: cols, N: n})
}

// growCap picks an amortized capacity for growth to need.
func growCap(have, need int) int {
	c := have * 2
	if c < need {
		c = need
	}
	if c < 64 {
		c = 64
	}
	return c
}

func (s *MemStore) ResetRows(rows [][]int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snap.Store(transpose(s.width, rows))
}

// transpose builds a column-major snapshot from row-major data using one
// contiguous backing array.
func transpose(width int, rows [][]int64) *Snapshot {
	n := len(rows)
	cols := make([][]int64, width)
	flat := make([]int64, width*n)
	for c := 0; c < width; c++ {
		col := flat[c*n : (c+1)*n : (c+1)*n]
		for i, r := range rows {
			col[i] = r[c]
		}
		cols[c] = col
	}
	return &Snapshot{Cols: cols, N: n}
}

func (s *MemStore) Scan(preds []Pred, batch int) *SegIter {
	snap := s.snap.Load()
	return newSegIter(snap, []span{{0, snap.N}}, 0, batch)
}

func (s *MemStore) ZoneCols() []int { return nil }

func (s *MemStore) OrderedIndex(col int) *OrderedIndex { return nil }

func (s *MemStore) LoadedVersion() uint64 { return 0 }

func (s *MemStore) Flush(version uint64) error { return nil }

func (s *MemStore) Close() error { return nil }
