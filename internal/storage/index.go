package storage

import "sort"

// OrderedIndex is an ordered secondary index over one column: every row id
// of the store, sorted by that column's value (ties in row order). Disk
// stores persist one index segment per flush and merge them at load; the
// merged index is valid only while it covers every row, so DiskStore stops
// handing it out after an unflushed Append.
type OrderedIndex struct {
	col  int
	keys []int64 // sorted ascending
	rows []int64 // rows[i] is the row id holding keys[i]
}

// NewOrderedIndex sorts (key, rowid) pairs into an index. The inputs are
// taken over (not copied).
func NewOrderedIndex(col int, keys, rows []int64) *OrderedIndex {
	ix := &OrderedIndex{col: col, keys: keys, rows: rows}
	sort.Stable(ix)
	return ix
}

// sort.Interface over the parallel (keys, rows) arrays.
func (ix *OrderedIndex) Len() int           { return len(ix.keys) }
func (ix *OrderedIndex) Less(i, j int) bool { return ix.keys[i] < ix.keys[j] }
func (ix *OrderedIndex) Swap(i, j int) {
	ix.keys[i], ix.keys[j] = ix.keys[j], ix.keys[i]
	ix.rows[i], ix.rows[j] = ix.rows[j], ix.rows[i]
}

// Col is the indexed column offset.
func (ix *OrderedIndex) Col() int { return ix.col }

// RowIDs returns every row id in ascending key order. The slice is the
// index's own storage; callers must not mutate it.
func (ix *OrderedIndex) RowIDs() []int64 { return ix.rows }

// Lookup returns the row ids whose key equals v, in insertion order.
func (ix *OrderedIndex) Lookup(v int64) []int64 {
	lo := sort.Search(len(ix.keys), func(i int) bool { return ix.keys[i] >= v })
	hi := sort.Search(len(ix.keys), func(i int) bool { return ix.keys[i] > v })
	return ix.rows[lo:hi:hi]
}

// Range returns the row ids whose key lies in [lo, hi], in key order.
func (ix *OrderedIndex) Range(lo, hi int64) []int64 {
	a := sort.Search(len(ix.keys), func(i int) bool { return ix.keys[i] >= lo })
	b := sort.Search(len(ix.keys), func(i int) bool { return ix.keys[i] > hi })
	if a >= b {
		return nil
	}
	return ix.rows[a:b:b]
}
