// viewmaint demonstrates the deltalog substrate on the classic recursive
// view-maintenance example the paper builds on (Gupta, Mumick &
// Subrahmanian): a transitive-closure view maintained under edge
// insertions and deletions, plus a min-aggregate with next-best recovery —
// the two extended-operator capabilities §4 of the paper requires from its
// query engine.
package main

import (
	"fmt"

	"repro/internal/deltalog"
)

func main() {
	e := deltalog.NewEngine()
	edge := e.Relation("edge", 2)
	path := e.Relation("path", 2)
	// path(x,y) :- edge(x,y).
	e.Map(edge, path, func(t deltalog.Tuple) []deltalog.Tuple {
		return []deltalog.Tuple{{t[0], t[1]}}
	})
	// path(x,z) :- path(x,y), edge(y,z).
	e.Join(path, edge, []int{1}, []int{0}, path,
		func(p, ed deltalog.Tuple) []deltalog.Tuple {
			return []deltalog.Tuple{{p[0], ed[1]}}
		})

	fmt.Println("insert edges 1->2->3->4")
	for _, ed := range [][2]int64{{1, 2}, {2, 3}, {3, 4}} {
		e.Insert(edge, deltalog.Tuple{ed[0], ed[1]})
	}
	steps := e.Run()
	fmt.Printf("paths after %d delta steps: %v\n", steps, path.Snapshot())

	fmt.Println("\ndelete edge 2->3 (incremental retraction)")
	e.Delete(edge, deltalog.Tuple{2, 3})
	steps = e.Run()
	fmt.Printf("paths after %d delta steps: %v\n", steps, path.Snapshot())

	// The extended min-aggregate of the paper's §4.1: deleting the
	// current minimum recovers the next-best value.
	fmt.Println("\nmin-aggregate with next-best recovery")
	pc := e.Relation("plancost", 2)
	best := e.Relation("bestcost", 2)
	e.GroupExtreme(pc, best, []int{0}, 1, deltalog.AggMin)
	e.Insert(pc, deltalog.Tuple{1, 30})
	e.Insert(pc, deltalog.Tuple{1, 10})
	e.Insert(pc, deltalog.Tuple{1, 20})
	e.Run()
	fmt.Printf("best = %v\n", best.Snapshot())
	e.Delete(pc, deltalog.Tuple{1, 10})
	e.Run()
	fmt.Printf("best after deleting the minimum = %v\n", best.Snapshot())
}
