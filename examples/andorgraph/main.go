// andorgraph reproduces the paper's driving example: the SearchSpace
// relation (Table 1) and the annotated and-or-graph (Figure 2) for the
// simplified TPC-H Q3 (Q3S) — customer x orders x lineitem.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/tpch"
)

func main() {
	cat := tpch.Generate(tpch.DefaultConfig())
	opt, err := repro.NewOptimizer(tpch.Q3S(), cat)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := opt.Optimize()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== SearchSpace relation (cf. paper Table 1) ==")
	fmt.Print(opt.SearchSpace())

	fmt.Println("\n== and-or-graph (cf. paper Figure 2) ==")
	fmt.Print(opt.AndOrGraph())

	fmt.Println("\n== chosen plan ==")
	fmt.Print(plan.Explain(opt.Query()))
}
