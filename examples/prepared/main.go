// prepared demonstrates the paper's second target domain (§1): repeated
// execution of the same query — a prepared statement — where each run
// yields better cost information and the optimizer re-optimizes with
// minimal overhead instead of from scratch.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"repro"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/relalg"
	"repro/internal/tpch"
	"repro/internal/volcano"
)

func main() {
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.005, Seed: 42, Skew: 0.5})
	q := tpch.Q10()
	opt, err := repro.NewOptimizer(q, cat)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := opt.Optimize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial optimization: %v\n", opt.Metrics().Elapsed)

	m, err := cost.NewModel(q, cat, cost.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}

	for round := 1; round <= 5; round++ {
		// Execute the prepared statement on the vectorized executor,
		// with morsel-driven parallel scans across all cores, and
		// observe actual cardinalities.
		comp := &exec.Compiler{Q: q, Cat: cat, Parallelism: runtime.GOMAXPROCS(0)}
		v, stats, err := comp.CompileVec(plan)
		if err != nil {
			log.Fatal(err)
		}
		rows, err := exec.CountVec(v)
		if err != nil {
			log.Fatal(err)
		}

		// Feed observed/estimated ratios back and re-optimize
		// incrementally; compare against a full Volcano re-run.
		for set, n := range stats.Cards {
			obs := float64(*n)
			if obs < 0.5 {
				obs = 0.5
			}
			opt.UpdateCardFactor(set, obs/m.CardBase(set))
		}
		plan, err = opt.Reoptimize()
		if err != nil {
			log.Fatal(err)
		}
		inc := opt.Metrics().Elapsed

		t0 := time.Now()
		if _, err := volcano.Optimize(m, relalg.DefaultSpace()); err != nil {
			log.Fatal(err)
		}
		full := time.Since(t0)

		fmt.Printf("round %d: %5d rows; incremental re-opt %10v (touched %3d entries) vs full optimization %10v\n",
			round, rows, inc, opt.Metrics().TouchedEntries, full)
	}
	fmt.Println("\nfinal plan:")
	fmt.Print(plan.Explain(q))
}
