// prepared demonstrates the paper's second target domain (§1): repeated
// execution of the same query — a prepared statement — where each run
// yields better cost information and the optimizer re-optimizes with
// minimal overhead instead of from scratch.
//
// The demo is built on the serving layer (repro.NewServer), so it exercises
// exactly the production path: the statement lives in the shared plan cache,
// each Exec feeds observed cardinalities back to the entry's live
// incremental optimizer, and the cached plan is repaired in place — never
// re-planned from scratch — until feedback converges and repairs stop. A
// full Volcano optimization is re-run each round purely as the
// non-incremental comparator.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"repro"
	"repro/internal/cost"
	"repro/internal/relalg"
	"repro/internal/tpch"
	"repro/internal/volcano"
)

func main() {
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.005, Seed: 42, Skew: 0.5})
	q := tpch.Q10()

	srv, err := repro.NewServer(cat, repro.ServerOptions{
		Parallelism: runtime.GOMAXPROCS(0),
		// Exact feedback for the demo: repair whenever statistics move at
		// all, so the convergence to zero repairs is earned, not assumed.
		FeedbackThreshold: 1e-3,
	})
	if err != nil {
		log.Fatal(err)
	}
	sess := srv.Session()

	st, err := sess.PrepareQuery(q)
	if err != nil {
		log.Fatal(err)
	}
	m0 := srv.Metrics()
	fmt.Printf("prepare: cache %s, initial optimization %v\n",
		map[bool]string{true: "hit", false: "miss"}[st.Hit], m0.FullOptTime)

	// The Volcano comparator optimizes over its own model so its factor
	// state cannot leak into the served plans.
	vm, err := cost.NewModel(q, cat, cost.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}

	for round := 1; round <= 5; round++ {
		res, err := st.Exec()
		if err != nil {
			log.Fatal(err)
		}

		m := srv.Metrics()
		entry := m.PerEntry[0]

		t0 := time.Now()
		if _, err := volcano.Optimize(vm, relalg.DefaultSpace()); err != nil {
			log.Fatal(err)
		}
		full := time.Since(t0)

		fmt.Printf("round %d: %5d rows on plan v%d; repaired=%-5t (cumulative repair time %10v, touched %4d entries) vs full optimization %10v\n",
			round, len(res.Rows), res.PlanVersion, res.Repaired,
			entry.RepairTime, entry.Touched, full)
	}

	m := srv.Metrics()
	entry := m.PerEntry[0]
	fmt.Printf("\nafter %d executions: %d from-scratch optimization(s), %d incremental repair(s), %d converged execution(s)\n",
		entry.Execs, entry.FullOpts, entry.Repairs, entry.Converged)
	fmt.Println("\nfinal plan:")
	fmt.Print(st.Plan().Explain(q))
}
