// streamadapt runs the paper's adaptive stream processing scenario (§5.4):
// the Linear Road SegTollS query over a bursty stream with drifting hot
// segments, re-optimized incrementally at every one-second split point.
package main

import (
	"fmt"
	"log"

	"repro/internal/aqp"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/linearroad"
	"repro/internal/relalg"
)

func main() {
	gen := linearroad.NewGen(7, 100)
	win := linearroad.NewWindows()
	ctl, err := aqp.NewController(aqp.Config{
		Query:      linearroad.SegTollS(),
		Cat:        win.Catalog(),
		Params:     cost.DefaultParams(),
		Space:      relalg.DefaultSpace(),
		Pruning:    core.PruneAll,
		Strategy:   aqp.Incremental,
		Cumulative: false, // fit the plan to the current window
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("slice  reopt      exec        rows  plan")
	for s := int64(0); s < 30; s++ {
		win.Ingest(gen.Slice(s, s+1))
		win.Materialize()
		res, err := ctl.RunSlice(win.Data)
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if res.Switched {
			marker = "  <- plan switch"
		}
		fmt.Printf("%5d  %-9v  %-10v  %4d  %s%s\n",
			s, res.Reopt.Round(1000), res.Exec.Round(1000), res.Rows,
			res.Plan.Signature(), marker)
	}
}
