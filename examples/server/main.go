// server is the quickstart for the concurrent query service
// (internal/server, surfaced as repro.NewServer): N concurrent sessions
// drive a mixed hot/cold workload against one shared plan cache, and the
// final metrics show the paper's economics measured across the workload —
// each distinct query structure pays exactly one from-scratch optimization,
// execution feedback repairs cached plans incrementally (for every session
// at once), and repairs stop when statistics converge.
//
// The cache is deliberately bounded (MaxEntries) to show the statistics
// plane at work: learned cardinalities live server-wide, keyed by canonical
// subexpression fingerprint, so evicting a plan never forgets what its
// executions taught the server — a structurally different spelling of the
// same join (the ad-hoc statement below reverses the FROM order, which the
// cache conservatively treats as a distinct structure) warm-starts from the
// factors its sibling already converged to.
package main

import (
	"fmt"
	"log"
	"sync"

	"repro"
	"repro/internal/tpch"
)

func main() {
	const sessions = 4
	const rounds = 8

	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.005, Seed: 42, Skew: 0.5})
	srv, err := repro.NewServer(cat, repro.ServerOptions{
		Parallelism:   2,
		MaxConcurrent: sessions,
		MaxEntries:    8, // bounded: eviction discards plans, never statistics
		Dict:          tpch.Dict(),
		Date:          tpch.Date,
		Named:         tpch.Queries(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// The hot set: every session runs these as prepared statements each
	// round. The two ad-hoc statements are the same join spelled with
	// opposite FROM orders: distinct plan-cache entries (relation order is
	// structural), one shared learned history.
	hot := []string{"Q3S", "Q5", "Q10"}
	const adhoc = `SELECT c.c_custkey, o.o_orderdate
	  FROM customer c, orders o
	  WHERE c.c_custkey = o.o_custkey AND c.c_mktsegment = 'BUILDING'
	    AND o.o_orderdate >= '1995-01-01'`
	const adhocFlipped = `SELECT o.o_orderdate, c.c_custkey
	  FROM orders o, customer c
	  WHERE c.c_custkey = o.o_custkey AND c.c_mktsegment = 'BUILDING'
	    AND o.o_orderdate >= '1995-01-01'`

	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sess := srv.Session()
			for r := 0; r < rounds; r++ {
				name := hot[(s+r)%len(hot)]
				st, err := sess.PrepareNamed(name)
				if err != nil {
					log.Fatalf("session %d: prepare %s: %v", s, name, err)
				}
				if _, err := st.Exec(); err != nil {
					log.Fatalf("session %d: exec %s: %v", s, name, err)
				}
				if s == 0 && r == rounds/2 {
					if _, err := sess.Query(adhoc); err != nil {
						log.Fatalf("session %d: ad-hoc: %v", s, err)
					}
				}
			}
		}(s)
	}
	wg.Wait()

	// The flipped spelling arrives last: a guaranteed cache miss, but its
	// subexpressions all fingerprint-match the converged ad-hoc entry, so
	// its very first execution should need no repair at all.
	res, err := srv.Session().Query(adhocFlipped)
	if err != nil {
		log.Fatal(err)
	}

	m := srv.Metrics()
	fmt.Printf("%d sessions x %d rounds over %d distinct query structures:\n\n",
		sessions, rounds, m.Entries)
	fmt.Print(m)
	fmt.Printf("\nevery entry: full-opt=1 (the cache miss), then incremental repairs only;\n")
	fmt.Printf("converged executions (%d) skipped re-optimization entirely — the Figure 9\n", m.Converged)
	fmt.Printf("curve, measured across a concurrent workload.\n")
	fmt.Printf("\nthe reversed-FROM ad-hoc statement missed the cache but warm-started from\n")
	fmt.Printf("the statistics plane (%d fingerprints known): first exec repaired=%t.\n",
		m.StatsKeys, res.Repaired)
	srv.Shutdown()
}
