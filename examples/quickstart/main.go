// Quickstart: optimize a TPC-H query, inspect the plan, apply a runtime
// statistics update, and re-optimize incrementally.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/tpch"
)

func main() {
	// Generate a small TPC-H database with statistics and indexes.
	cat := tpch.Generate(tpch.DefaultConfig())

	// Build the incremental optimizer for TPC-H Q5 (a six-way join).
	opt, err := repro.NewOptimizer(tpch.Q5(), cat)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := opt.Optimize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== initial plan ==")
	fmt.Print(plan.Explain(opt.Query()))
	met := opt.Metrics()
	fmt.Printf("\nenumerated %d groups / %d alternatives; costed %d\n",
		met.GroupsEnumerated, met.AltsEnumerated, met.AltsCosted)

	// Runtime feedback arrives: the LINEITEM x ORDERS x ... subexpression
	// is 8x larger than estimated. Re-optimize incrementally — only the
	// affected region of the plan space is recomputed.
	target := tpch.Q5Expressions()[3] // D = LINEITEM*C
	fmt.Printf("\n== update: %s is 8x larger than estimated ==\n", target.Name)
	opt.UpdateCardFactor(target.Set, 8)
	plan, err = opt.Reoptimize()
	if err != nil {
		log.Fatal(err)
	}
	met = opt.Metrics()
	fmt.Printf("re-optimization touched %d of %d alternatives in %v\n",
		met.TouchedEntries, met.AltsEnumerated, met.Elapsed)
	fmt.Println("\n== new plan ==")
	fmt.Print(plan.Explain(opt.Query()))
}
