// Package repro is a from-scratch Go reproduction of "Enabling Incremental
// Query Re-Optimization" (Mengmeng Liu, Zachary G. Ives, Boon Thau Loo;
// SIGMOD 2016): a cost-based query optimizer whose state is an incrementally
// maintainable materialized view, so that after a cardinality or cost update
// only the affected region of the plan search space is recomputed.
//
// This root package is the public facade over the implementation packages:
//
//   - internal/core — the incremental declarative optimizer (the paper's
//     contribution): SearchSpace/PlanCost/BestCost/Bound state, aggregate
//     selection with tuple source suppression, reference counting, and
//     recursive bounding, all maintained under cost deltas;
//   - internal/volcano, internal/systemr — the procedural baselines;
//   - internal/relalg, internal/catalog, internal/stats, internal/cost —
//     the shared query model, physical design, statistics and cost model;
//   - internal/exec — a vectorized (batch-at-a-time) executor with
//     selection vectors, morsel-driven parallel scans behind a Parallelism
//     option, per-query memory accounting with grace-hash spilling under a
//     budget, exact per-operator cardinality feedback, and a row-at-a-time
//     compatibility shim;
//   - internal/aqp — the adaptive query processing loop;
//   - internal/fbstore — the server-wide statistics plane: calibrated
//     cardinality observations keyed by canonical subexpression
//     fingerprint, shared by every plan-cache entry and surviving their
//     eviction;
//   - internal/rescache — the bounded server-wide semantic result cache:
//     materialized subexpression outputs keyed by the same canonical
//     fingerprints, invalidated by base-table data versions;
//   - internal/server — the concurrent query service: sessions over a
//     shared plan cache whose entries each hold a live incremental
//     optimizer, so every execution's feedback incrementally repairs the
//     cached plan for all sessions (surfaced here as NewServer /
//     Session / Prepare / Exec, and as a wire protocol by cmd/reproserve);
//   - internal/obs — the observability primitives: nil-safe per-operator
//     execution spans, the query-lifecycle event ring, and wait-free
//     latency histograms with Prometheus text exposition;
//   - internal/tpch, internal/linearroad — the paper's workloads;
//   - internal/deltalog — a generic counted delta-dataflow engine used as a
//     differential-testing oracle for the optimizer;
//   - internal/bench — runners regenerating every table and figure of §5.
//
// # Quickstart
//
//	cat := tpch.Generate(tpch.DefaultConfig())
//	opt, _ := repro.NewOptimizer(tpch.Q5(), cat)
//	plan, _ := opt.Optimize()
//	fmt.Println(plan.Explain(opt.Query()))
//
//	// A runtime statistics update arrives: re-optimize incrementally.
//	opt.UpdateCardFactor(someExpr, 4.0)
//	plan, _ = opt.Reoptimize()
//
// # Serving
//
// For concurrent workloads, run a Server instead of owning an Optimizer:
// prepared statements are cached by canonical query structure, each cache
// entry keeps its incremental optimizer alive across executions and
// sessions, and execution feedback repairs cached plans in place:
//
//	srv, _ := repro.NewServer(cat, repro.ServerOptions{
//		Dict: tpch.Dict(), Date: tpch.Date, Named: tpch.Queries(),
//	})
//	sess := srv.Session()
//	st, _ := sess.Prepare("SELECT ... FROM ... WHERE ...")
//	res, _ := st.Exec() // feeds observed cardinalities back to the cache
//
// Learned cardinalities live in a server-wide statistics plane keyed by
// canonical subexpression fingerprint, not in the cache entries: two
// structurally different statements over the same tables calibrate against
// one shared history, and a structurally new statement over hot tables
// warm-starts its first optimization from what the workload already
// learned. That makes the cache safely boundable — ServerOptions.MaxEntries
// caps it with LRU eviction and ServerOptions.TTL expires idle entries;
// eviction discards only the plan and its live optimizer, never the
// statistics, so re-admission starts near-converged. ServerOptions.Stats
// optionally shares one NewStatsStore between servers. Server.Shutdown
// drains in-flight executions for a graceful stop.
//
// # Statistics persistence and ageing
//
// The statistics plane is durable and drift-aware. StatsStore.Save and
// StatsStore.Load write and read a versioned snapshot of everything the
// workload has learned (SaveFile/LoadFile add atomic file rotation), so a
// restarted server re-prepares its workload with full-opt=1, warm-started
// factors, and no relearning — cmd/reproserve wires this to -stats-file,
// loading on boot and saving on shutdown. Under data drift, frozen
// statistics mislead; StatsStoreOptions (or ServerOptions.DecayHalfLife /
// StaleAfter for a server-private store) turn on observation ageing:
// DecayHalfLife exponentially decays the cumulative observation history on
// a logical observation clock, so post-drift feedback overturns a
// confidently-wrong factor in O(half-life) observations instead of
// O(history), and StaleAfter is the horizon beyond which an unobserved
// fingerprint stops warm-starting and is eventually reclaimed. The
// internal/driftkit harness replays phase-shifted workloads against a live
// Server to assert exactly that repair-then-reconverge trajectory.
//
// # Cross-query result reuse
//
// The fingerprint plane identifies more than statistics: two subexpressions
// with equal canonical fingerprints compute the same relation. Setting
// ServerOptions.ResultCacheBytes gives the server a bounded semantic result
// cache (internal/rescache) that exploits this. When a statement executes,
// the compiler probes the cache for each hot cacheable subtree of its plan;
// a hit replaces the subtree with a zero-copy scan over the materialized
// columns — shared across statements and sessions that never saw each other
// — while a miss tees the subtree's output into the cache as a side effect
// of normal execution. Entries pin the data versions of their base tables
// (bumped by catalog Append/Analyze), so a mutation silently invalidates
// every dependent result; the byte budget evicts LRU, and
// ServerOptions.ResultCacheStaleAfter ages out entries the workload stopped
// touching. Cached serving is exactly transparent: results and the
// per-operator cardinality feedback driving plan repair are byte-identical
// with the cache on or off. Hit/miss/store/eviction/invalidation counters
// surface in ServerMetrics; cmd/reproserve wires the budget to
// -result-cache-mb.
//
// # Observability
//
// The serving layer is observable at three depths, all built on
// internal/obs and all provably free when off (instrumentation hangs off
// nil-able handles the executor never touches when disabled):
//
//   - Per-operator profiles. Stmt.ExplainAnalyze runs a real execution —
//     its feedback repairs the cached plan like any other — while
//     attributing time, batch and row counts to every plan operator, and
//     renders the plan annotated with estimated-vs-actual cardinality and
//     q-error per node. cmd/optcli -analyze and the protocol's "analyze"
//     command expose the same tree.
//   - Lifecycle tracing. ServerOptions.TraceEvents keeps the last N
//     structured events (prepare hit/miss, admission queue wait, exec,
//     incremental repair, result-cache probe/spool/invalidate) in a
//     bounded ring readable via Server.Tracer. ServerOptions.TraceSlowQuery
//     profiles every execution and, when one exceeds the threshold, dumps
//     its event trail plus the full EXPLAIN ANALYZE tree to
//     Server.SlowTraces and the optional TraceOnSlow callback.
//   - A scrapeable metrics plane. Execution latency, admission queue wait
//     and repair latency feed wait-free histograms that are always on;
//     ServerMetrics carries their count/mean/p50/p95/p99 summaries (and is
//     json.Marshaler), and Server.DebugHandler serves /metrics (Prometheus
//     text format, including per-entry estimation-error gauges),
//     /metrics.json, /traces and /debug/pprof/*. cmd/reproserve wires this
//     to -http, -trace-events, -slow-query and -metrics-json.
//
// # Memory
//
// Execution is memory-bounded on request. ServerOptions.MemBudgetBytes
// bounds each query's tracked execution memory: the executor charges its
// materializing state (hash-join build sides, aggregation tables, pipeline
// scratch) to a per-query memory tracker, and a hash join or aggregation
// whose build input would exceed the budget switches to grace-hash
// execution — the input is partitioned to disk by the same hash the
// in-memory path uses, partitions are processed one at a time, and a
// partition that still doesn't fit is recursively repartitioned. Spilled
// execution is exactly transparent: result multisets and the per-operator
// cardinality feedback that repairs cached plans are byte-identical with
// spilling on or off, at any Parallelism (differential-tested), so
// bounding memory never perturbs the paper's adaptive loop.
// ServerOptions.MemCeilingBytes layers admission control on top: an
// execution is held until the sum of admitted per-query budgets fits
// under the server-wide ceiling, and the wait is traced as a queue-wait
// with reason "mem". Per-query peak tracked memory is always observable —
// budget or not — as a histogram in ServerMetrics and on /metrics
// (repro_peak_memory_bytes), alongside spill counters (partitions, bytes,
// recursions). cmd/reproserve wires the bounds to -mem-budget-mb and
// -mem-ceiling-mb; reprobench -fig memory measures unbounded vs budgeted
// execution side by side.
//
// # Storage
//
// Tables bind to a pluggable storage backend (internal/storage). The
// default is an in-memory column store whose snapshots publish behind one
// atomic pointer, so appending rows never disturbs the column windows an
// in-flight execution is scanning — mutation-safe and still zero-copy.
// Setting ServerOptions.DataDir binds every table to a log-structured
// persistent backend under that directory instead: appends write through a
// synced write-ahead log, and a graceful Server.Shutdown flushes the
// unflushed tail into immutable column-segment files (rows sorted by the
// table's clustered column, per-column min/max zone maps, plus ordered
// secondary-index segments under an order-preserving key encoding). On the
// next boot the directory wins over generated seed data: segments and log
// replay into memory, data versions carry over (so result-cache
// invalidation state survives), and the server serves byte-identical
// results with zero regeneration. Segment zone maps also give the
// optimizer a genuinely distinct access path — a segment-pruned scan that
// skips whole segments a pushed-down predicate provably excludes — costed
// and enumerated alongside table and index scans for persistent tables
// only. ServerOptions.SpillDir independently places the (immediately
// unlinked) spill partition files of memory-bounded execution; a write
// failure there surfaces as a query error. cmd/reproserve wires these to
// -data-dir and -spill-dir; -data-dir pairs naturally with -stats-file so
// data and learned statistics both survive restarts.
package repro

import (
	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/fbstore"
	"repro/internal/relalg"
	"repro/internal/server"
	"repro/internal/sqlmini"
)

// Optimizer is the user-facing handle on the incremental declarative
// optimizer with the full pruning configuration of the paper.
type Optimizer struct {
	inner *core.Optimizer
	query *relalg.Query
}

// Options configures NewOptimizer.
type Options struct {
	// Params overrides the cost-model constants (zero value: defaults).
	Params *cost.Params
	// Space restricts the plan space (zero value: the full space).
	Space *relalg.SpaceOptions
	// Pruning selects the pruning strategies (zero value: all of them).
	Pruning *core.Pruning
}

// NewOptimizer builds an incremental optimizer for the query over the
// catalog with default options.
func NewOptimizer(q *relalg.Query, cat *catalog.Catalog) (*Optimizer, error) {
	return NewOptimizerOptions(q, cat, Options{})
}

// NewOptimizerOptions builds an incremental optimizer with explicit options.
func NewOptimizerOptions(q *relalg.Query, cat *catalog.Catalog, o Options) (*Optimizer, error) {
	params := cost.DefaultParams()
	if o.Params != nil {
		params = *o.Params
	}
	space := relalg.DefaultSpace()
	if o.Space != nil {
		space = *o.Space
	}
	mode := core.PruneAll
	if o.Pruning != nil {
		mode = *o.Pruning
	}
	m, err := cost.NewModel(q, cat, params)
	if err != nil {
		return nil, err
	}
	inner, err := core.New(m, space, mode)
	if err != nil {
		return nil, err
	}
	return &Optimizer{inner: inner, query: q}, nil
}

// Query returns the optimizer's query.
func (o *Optimizer) Query() *relalg.Query { return o.query }

// Optimize performs the initial optimization.
func (o *Optimizer) Optimize() (*relalg.Plan, error) { return o.inner.Optimize() }

// UpdateCardFactor stages a cardinality update: the estimated cardinality
// of every expression containing s is scaled by factor (relative to the
// initial statistics). Call Reoptimize to propagate.
func (o *Optimizer) UpdateCardFactor(s relalg.RelSet, factor float64) {
	o.inner.UpdateCardFactor(s, factor)
}

// UpdateScanCostFactor stages a scan-cost update for one query relation.
func (o *Optimizer) UpdateScanCostFactor(rel int, factor float64) {
	o.inner.UpdateScanCostFactor(rel, factor)
}

// Reoptimize incrementally repairs the optimizer state under the staged
// updates and returns the (possibly new) best plan.
func (o *Optimizer) Reoptimize() (*relalg.Plan, error) { return o.inner.Reoptimize() }

// Metrics exposes the instrumentation counters.
func (o *Optimizer) Metrics() core.Metrics { return o.inner.Metrics() }

// SearchSpace renders the live SearchSpace relation as a text table in the
// format of the paper's Table 1.
func (o *Optimizer) SearchSpace() string { return o.inner.FormatSearchSpace() }

// AndOrGraph renders the annotated and-or-graph (the paper's Figure 2).
func (o *Optimizer) AndOrGraph() string { return o.inner.AndOrGraph() }

// Core exposes the underlying optimizer for advanced use (invariant checks,
// pruning-mode experiments, state export).
func (o *Optimizer) Core() *core.Optimizer { return o.inner }

// ParseSQL compiles a single-block SELECT statement against the catalog
// into the query model accepted by NewOptimizer. opts.Dict resolves string
// literals to dictionary codes and opts.Date encodes date literals; see
// internal/sqlmini for the grammar.
func ParseSQL(sql string, cat *catalog.Catalog, opts SQLOptions) (*relalg.Query, error) {
	return sqlmini.Parse(sql, cat, sqlmini.Options{Dict: opts.Dict, Date: opts.Date})
}

// SQLOptions configures ParseSQL literal resolution.
type SQLOptions struct {
	Dict map[string]int64
	Date func(y, m, d int) int64
}

// ---- serving layer (internal/server) ----

// Server is the multi-session query service: a shared plan cache of live
// incremental optimizers with admission control and per-entry metrics. See
// internal/server for the full documentation.
type Server = server.Server

// ServerOptions configures NewServer.
type ServerOptions = server.Options

// ServerSession is one client's handle on a Server.
type ServerSession = server.Session

// Stmt is a prepared statement bound to the shared plan cache.
type Stmt = server.Stmt

// ExecResult is one statement execution's outcome.
type ExecResult = server.Result

// ServerMetrics is a snapshot of a Server's cache and repair counters.
type ServerMetrics = server.Metrics

// StatsStore is the server-wide statistics plane: calibrated cardinality
// observation state keyed by canonical subexpression fingerprint. Servers
// create a private one by default; pass one through ServerOptions.Stats to
// share learned statistics between servers or across server rebuilds. Save
// and Load (and SaveFile/LoadFile, with atomic rotation) persist the plane
// across process restarts as a versioned snapshot.
type StatsStore = fbstore.StatsStore

// StatsStoreOptions configures observation ageing for NewStatsStoreWith:
// DecayHalfLife exponentially decays the cumulative observation history (in
// logical observations), StaleAfter stops warm-starting — and eventually
// reclaims — fingerprints the workload stopped observing. The zero value
// keeps the full history forever.
type StatsStoreOptions = fbstore.Options

// NewStatsStore builds an empty statistics plane with ageing disabled.
func NewStatsStore() *StatsStore { return fbstore.New() }

// NewStatsStoreWith builds an empty statistics plane with the given ageing
// configuration.
func NewStatsStoreWith(o StatsStoreOptions) *StatsStore { return fbstore.NewWithOptions(o) }

// NewServer builds a concurrent query service over the catalog. The catalog
// must not be mutated afterwards.
func NewServer(cat *catalog.Catalog, o ServerOptions) (*Server, error) {
	return server.New(cat, o)
}

// CanonicalQueryKey exposes the plan-cache key derivation: two queries with
// equal keys share a cache entry (one live optimizer, one feedback history).
func CanonicalQueryKey(q *relalg.Query) string { return server.CanonicalKey(q) }
