package repro

// Benchmarks regenerating each of the paper's evaluation artifacts (see
// DESIGN.md's per-experiment index). Each benchmark wraps the measured
// kernel of the corresponding figure/table; cmd/reprobench prints the full
// tables. Run with:
//
//	go test -bench=. -benchmem .
import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/aqp"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/linearroad"
	"repro/internal/relalg"
	"repro/internal/systemr"
	"repro/internal/tpch"
	"repro/internal/volcano"
)

func benchEnv() *bench.Env {
	e := bench.NewEnv(tpch.Config{ScaleFactor: 0.005, Seed: 42})
	e.Repeats = 1
	return e
}

// BenchmarkFig4InitialOptimization measures initial ("from scratch")
// optimization per architecture on the Figure 4 workload.
func BenchmarkFig4InitialOptimization(b *testing.B) {
	e := benchEnv()
	for _, q := range tpch.JoinWorkload() {
		m := e.Model(q)
		b.Run(q.Name+"/volcano", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := volcano.Optimize(m, e.Space); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(q.Name+"/systemr", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := systemr.Optimize(m, e.Space); err != nil {
					b.Fatal(err)
				}
			}
		})
		for _, mode := range []core.Pruning{core.PruneEvita, core.PruneAll} {
			mode := mode
			b.Run(q.Name+"/declarative-"+mode.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					o, err := core.New(e.Model(q), e.Space, mode)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := o.Optimize(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig5IncrementalReopt measures one incremental re-optimization of
// Q5 after a join-selectivity change, per changed expression (Figure 5).
func BenchmarkFig5IncrementalReopt(b *testing.B) {
	e := benchEnv()
	q := tpch.Q5()
	for _, ex := range tpch.Q5Expressions() {
		ex := ex
		b.Run(ex.Name, func(b *testing.B) {
			o, err := core.New(e.Model(q), e.Space, core.PruneAll)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := o.Optimize(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f := 4.0
				if i%2 == 1 {
					f = 1.0 // alternate so every iteration is a real delta
				}
				o.UpdateCardFactor(ex.Set, f)
				if _, err := o.Reoptimize(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// The non-incremental comparator: a full Volcano optimization.
	b.Run("volcano-full", func(b *testing.B) {
		m := e.Model(q)
		for i := 0; i < b.N; i++ {
			if _, err := volcano.Optimize(m, e.Space); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig6ExecutionFeedback measures one feedback round of Figure 6:
// execute Q5 over a skewed partition, re-optimize incrementally.
func BenchmarkFig6ExecutionFeedback(b *testing.B) {
	e := benchEnv()
	for i := 0; i < b.N; i++ {
		e.Figure6(3, 0.5)
	}
}

// BenchmarkFig7PruningConfigs measures initial optimization of Q5 under
// each pruning configuration (Figure 7).
func BenchmarkFig7PruningConfigs(b *testing.B) {
	e := benchEnv()
	q := tpch.Q5()
	for _, mode := range bench.Figure7Configs() {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o, err := core.New(e.Model(q), e.Space, mode)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := o.Optimize(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8ScanCostReopt measures incremental re-optimization of Q5
// under an Orders scan-cost change per pruning configuration (Figure 8).
func BenchmarkFig8ScanCostReopt(b *testing.B) {
	e := benchEnv()
	q := tpch.Q5()
	for _, mode := range bench.Figure7Configs() {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			o, err := core.New(e.Model(q), e.Space, mode)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := o.Optimize(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f := 8.0
				if i%2 == 1 {
					f = 1.0
				}
				o.UpdateScanCostFactor(tpch.Q5Orders, f)
				if _, err := o.Reoptimize(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// streamBench drives an AQP controller over the Linear Road stream — the
// kernel of Figures 9/10 and Table 3.
func streamBench(b *testing.B, strategy aqp.Strategy, cumulative bool, slices int) {
	for i := 0; i < b.N; i++ {
		gen := linearroad.NewGen(7, 100)
		win := linearroad.NewWindows()
		ctl, err := aqp.NewController(aqp.Config{
			Query: linearroad.SegTollS(), Cat: win.Catalog(),
			Params: benchEnv().Params, Space: relalg.DefaultSpace(),
			Pruning: core.PruneAll, Strategy: strategy, Cumulative: cumulative,
		})
		if err != nil {
			b.Fatal(err)
		}
		for s := 0; s < slices; s++ {
			win.Ingest(gen.Slice(int64(s), int64(s+1)))
			win.Materialize()
			if _, err := ctl.RunSlice(win.Data); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig9AQPReopt compares incremental and from-scratch
// re-optimization inside the adaptive loop (Figure 9).
func BenchmarkFig9AQPReopt(b *testing.B) {
	b.Run("incremental", func(b *testing.B) { streamBench(b, aqp.Incremental, true, 20) })
	b.Run("non-incremental", func(b *testing.B) { streamBench(b, aqp.FullReopt, true, 20) })
}

// BenchmarkFig10AQPExecution measures the adaptive execution loop with
// cumulative vs non-cumulative statistics (Figure 10).
func BenchmarkFig10AQPExecution(b *testing.B) {
	b.Run("cumulative", func(b *testing.B) { streamBench(b, aqp.Incremental, true, 20) })
	b.Run("non-cumulative", func(b *testing.B) { streamBench(b, aqp.Incremental, false, 20) })
}

// BenchmarkTable3SliceSizes measures the adaptation-frequency trade-off
// (Table 3) at 1 s and 5 s slices over a fixed-length stream.
func BenchmarkTable3SliceSizes(b *testing.B) {
	run := func(b *testing.B, secs int64) {
		for i := 0; i < b.N; i++ {
			gen := linearroad.NewGen(7, 100)
			win := linearroad.NewWindows()
			ctl, err := aqp.NewController(aqp.Config{
				Query: linearroad.SegTollS(), Cat: win.Catalog(),
				Params: benchEnv().Params, Space: relalg.DefaultSpace(),
				Pruning: core.PruneAll, Strategy: aqp.Incremental,
			})
			if err != nil {
				b.Fatal(err)
			}
			for from := int64(0); from < 20; from += secs {
				win.Ingest(gen.Slice(from, from+secs))
				win.Materialize()
				if _, err := ctl.RunSlice(win.Data); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("slice-1s", func(b *testing.B) { run(b, 1) })
	b.Run("slice-5s", func(b *testing.B) { run(b, 5) })
	b.Run("slice-10s", func(b *testing.B) { run(b, 10) })
}

// BenchmarkAblationSearchOrder compares depth-first vs breadth-first
// expansion (the DESIGN.md §5 ablation).
func BenchmarkAblationSearchOrder(b *testing.B) {
	e := benchEnv()
	q := tpch.Q8Join()
	for _, breadth := range []bool{false, true} {
		breadth := breadth
		name := "depth-first"
		if breadth {
			name = "breadth-first"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o, err := core.New(e.Model(q), e.Space, core.PruneAll)
				if err != nil {
					b.Fatal(err)
				}
				o.SetBreadthFirst(breadth)
				if _, err := o.Optimize(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPlanSpace measures optimization cost across plan-space
// restrictions (left-deep footnote-1 variant, operator subsets).
func BenchmarkAblationPlanSpace(b *testing.B) {
	e := benchEnv()
	q := tpch.Q5()
	spaces := map[string]relalg.SpaceOptions{
		"full":      relalg.DefaultSpace(),
		"left-deep": {HashJoin: true, MergeJoin: true, IndexNL: true, SortEnforcer: true, LeftDeepOnly: true},
		"hash-only": {HashJoin: true, SortEnforcer: true},
	}
	for name, space := range spaces {
		space := space
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o, err := core.New(e.Model(q), space, core.PruneAll)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := o.Optimize(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchExecQuery compares the execution paths on one TPC-H query at the
// default benchmark scale: the legacy row-at-a-time interpreter, the
// vectorized executor at 1 (serial) / 2 / 4 pipeline workers, and all
// cores.
func benchExecQuery(b *testing.B, q *relalg.Query) {
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.005, Seed: 42})
	m, err := cost.NewModel(q, cat, cost.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	vr, err := volcano.Optimize(m, relalg.DefaultSpace())
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, par int) {
		for i := 0; i < b.N; i++ {
			comp := &exec.Compiler{Q: q, Cat: cat, Parallelism: par}
			v, _, err := comp.CompileVec(vr.Plan)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := exec.CountVec(v); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("row", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			comp := &exec.Compiler{Q: q, Cat: cat}
			it, _, err := comp.CompileRow(vr.Plan)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := exec.Count(it); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, par := range []int{1, 2, 4} {
		par := par
		b.Run(fmt.Sprintf("vec-p%d", par), func(b *testing.B) { run(b, par) })
	}
	b.Run("vec-pmax", func(b *testing.B) { run(b, runtime.GOMAXPROCS(0)) })
}

// BenchmarkExecQ3S compares row-at-a-time vs vectorized vs pipeline-parallel
// execution of the paper's driving example (simplified TPC-H Q3).
func BenchmarkExecQ3S(b *testing.B) { benchExecQuery(b, tpch.Q3S()) }

// BenchmarkExecQ5 compares the execution paths on TPC-H Q5 (six-way join
// with aggregation).
func BenchmarkExecQ5(b *testing.B) { benchExecQuery(b, tpch.Q5()) }

// BenchmarkExecQ1 compares the execution paths on TPC-H Q1 (single-table
// aggregation over lineitem) — the aggregation-heavy workload; run with
// -benchmem to see the flat agg table keep the hot path allocation-free.
func BenchmarkExecQ1(b *testing.B) { benchExecQuery(b, tpch.Q1()) }

// BenchmarkFacade exercises the public API end to end (optimize +
// re-optimize), as a library consumer would.
func BenchmarkFacade(b *testing.B) {
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.005, Seed: 42})
	o, err := NewOptimizer(tpch.Q5(), cat)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := o.Optimize(); err != nil {
		b.Fatal(err)
	}
	target := tpch.Q5Expressions()[4].Set
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := 2.0
		if i%2 == 1 {
			f = 1.0
		}
		o.UpdateCardFactor(target, f)
		if _, err := o.Reoptimize(); err != nil {
			b.Fatal(err)
		}
	}
}
