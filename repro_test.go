package repro

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/relalg"
	"repro/internal/tpch"
)

func TestFacadeEndToEnd(t *testing.T) {
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.002, Seed: 42})
	opt, err := NewOptimizer(tpch.Q5(), cat)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := opt.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Expr != opt.Query().AllRels() {
		t.Fatal("plan does not cover the query")
	}
	baseline := plan.Cost

	// An 8x cardinality update must raise the (estimated) best cost.
	opt.UpdateCardFactor(opt.Query().AllRels(), 8)
	plan, err = opt.Reoptimize()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cost <= baseline {
		t.Fatalf("8x root cardinality did not raise cost: %v <= %v", plan.Cost, baseline)
	}
	m := opt.Metrics()
	if m.TouchedEntries == 0 {
		t.Fatal("update touched nothing")
	}
	// Reverting must restore the original optimum exactly.
	opt.UpdateCardFactor(opt.Query().AllRels(), 1)
	plan, err = opt.Reoptimize()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cost != baseline {
		t.Fatalf("revert did not restore optimum: %v != %v", plan.Cost, baseline)
	}
	if err := opt.Core().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(opt.SearchSpace(), "*Expr") {
		t.Fatal("SearchSpace rendering broken")
	}
	if !strings.Contains(opt.AndOrGraph(), "OR ") {
		t.Fatal("AndOrGraph rendering broken")
	}
}

func TestFacadeOptions(t *testing.T) {
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.001, Seed: 1})
	space := relalg.DefaultSpace()
	space.LeftDeepOnly = true
	mode := core.PruneEvita
	opt, err := NewOptimizerOptions(tpch.Q3S(), cat, Options{Space: &space, Pruning: &mode})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := opt.Optimize(); err != nil {
		t.Fatal(err)
	}
	if opt.Core().Mode() != core.PruneEvita {
		t.Fatal("pruning option ignored")
	}
	bad := core.Pruning{Suppress: true}
	if _, err := NewOptimizerOptions(tpch.Q3S(), cat, Options{Pruning: &bad}); err == nil {
		t.Fatal("invalid pruning accepted")
	}
}

func TestFacadeParseSQL(t *testing.T) {
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.001, Seed: 42})
	q, err := ParseSQL(
		`SELECT SUM(l.l_extendedprice) FROM orders o, lineitem l
		 WHERE o.o_orderkey = l.l_orderkey AND o.o_orderdate < '1995-03-15'`,
		cat, SQLOptions{Date: tpch.Date})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := NewOptimizer(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := opt.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Expr != q.AllRels() {
		t.Fatal("SQL-derived plan incomplete")
	}
}

// TestFacadeStatsRestart simulates the reproserve kill/restart cycle through
// the public facade: a server converges on a workload, saves its statistics
// plane with atomic rotation, and a brand-new server (fresh plan cache,
// fresh optimizers) loads the snapshot and re-prepares the same workload —
// one full optimization per entry, warm-started factors, and repairs no
// worse than the converged pre-restart state.
func TestFacadeStatsRestart(t *testing.T) {
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.002, Seed: 42, Skew: 0.5})
	path := filepath.Join(t.TempDir(), "stats.json")
	ageing := StatsStoreOptions{DecayHalfLife: 200, StaleAfter: 10000}

	// First life: converge, then persist on "shutdown".
	before := NewStatsStoreWith(ageing)
	srv1, err := NewServer(cat, ServerOptions{Stats: before, Named: tpch.Queries()})
	if err != nil {
		t.Fatal(err)
	}
	st, err := srv1.Session().PrepareNamed("Q3S")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := st.Exec(); err != nil {
			t.Fatal(err)
		}
	}
	srv1.Shutdown()
	if err := before.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	// Second life: a different process would start from the file alone.
	after := NewStatsStoreWith(ageing)
	if err := after.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if after.Clock() != before.Clock() || after.Len() != before.Len() {
		t.Fatalf("snapshot lost state: clock %d/%d keys %d/%d",
			after.Clock(), before.Clock(), after.Len(), before.Len())
	}
	srv2, err := NewServer(cat, ServerOptions{Stats: after, Named: tpch.Queries()})
	if err != nil {
		t.Fatal(err)
	}
	re, err := srv2.Session().PrepareNamed("Q3S")
	if err != nil {
		t.Fatal(err)
	}
	if re.Hit {
		t.Fatal("fresh server reported a plan-cache hit")
	}
	for i := 0; i < 3; i++ {
		res, err := re.Exec()
		if err != nil {
			t.Fatal(err)
		}
		if res.Repaired {
			t.Fatalf("restarted server repaired on exec %d despite loaded statistics", i)
		}
	}
	m := srv2.Metrics()
	if m.FullOpts != 1 {
		t.Fatalf("restarted server full-opts=%d, want exactly 1 (the re-prepare miss)", m.FullOpts)
	}
	if m.WarmSeeds == 0 {
		t.Fatal("restarted server was not warm-started from the snapshot")
	}
	if m.Repairs != 0 {
		t.Fatalf("restarted server repairs=%d, want 0 (no worse than converged)", m.Repairs)
	}
}
