package repro

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/relalg"
	"repro/internal/tpch"
)

func TestFacadeEndToEnd(t *testing.T) {
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.002, Seed: 42})
	opt, err := NewOptimizer(tpch.Q5(), cat)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := opt.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Expr != opt.Query().AllRels() {
		t.Fatal("plan does not cover the query")
	}
	baseline := plan.Cost

	// An 8x cardinality update must raise the (estimated) best cost.
	opt.UpdateCardFactor(opt.Query().AllRels(), 8)
	plan, err = opt.Reoptimize()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cost <= baseline {
		t.Fatalf("8x root cardinality did not raise cost: %v <= %v", plan.Cost, baseline)
	}
	m := opt.Metrics()
	if m.TouchedEntries == 0 {
		t.Fatal("update touched nothing")
	}
	// Reverting must restore the original optimum exactly.
	opt.UpdateCardFactor(opt.Query().AllRels(), 1)
	plan, err = opt.Reoptimize()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cost != baseline {
		t.Fatalf("revert did not restore optimum: %v != %v", plan.Cost, baseline)
	}
	if err := opt.Core().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(opt.SearchSpace(), "*Expr") {
		t.Fatal("SearchSpace rendering broken")
	}
	if !strings.Contains(opt.AndOrGraph(), "OR ") {
		t.Fatal("AndOrGraph rendering broken")
	}
}

func TestFacadeOptions(t *testing.T) {
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.001, Seed: 1})
	space := relalg.DefaultSpace()
	space.LeftDeepOnly = true
	mode := core.PruneEvita
	opt, err := NewOptimizerOptions(tpch.Q3S(), cat, Options{Space: &space, Pruning: &mode})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := opt.Optimize(); err != nil {
		t.Fatal(err)
	}
	if opt.Core().Mode() != core.PruneEvita {
		t.Fatal("pruning option ignored")
	}
	bad := core.Pruning{Suppress: true}
	if _, err := NewOptimizerOptions(tpch.Q3S(), cat, Options{Pruning: &bad}); err == nil {
		t.Fatal("invalid pruning accepted")
	}
}

func TestFacadeParseSQL(t *testing.T) {
	cat := tpch.Generate(tpch.Config{ScaleFactor: 0.001, Seed: 42})
	q, err := ParseSQL(
		`SELECT SUM(l.l_extendedprice) FROM orders o, lineitem l
		 WHERE o.o_orderkey = l.l_orderkey AND o.o_orderdate < '1995-03-15'`,
		cat, SQLOptions{Date: tpch.Date})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := NewOptimizer(q, cat)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := opt.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Expr != q.AllRels() {
		t.Fatal("SQL-derived plan incomplete")
	}
}
